package mobility

import (
	"math"

	"repro/internal/geometry"
	"repro/internal/stats"
)

// Positioned is any mobility model exposing continuous node positions.
type Positioned interface {
	Positions() []geometry.Point
	Step()
}

// PositionalDensity runs the model for steps time units, sampling every
// node's position every sampleEvery steps into a bins x bins histogram over
// [0, L]². The returned histogram estimates the stationary positional
// density F(·) of Corollary 4 (assuming the model was warmed up).
func PositionalDensity(m Positioned, L float64, bins, steps, sampleEvery int) *stats.Hist2D {
	h := stats.NewHist2D(0, L, bins)
	for t := 0; t < steps; t++ {
		if t%sampleEvery == 0 {
			for _, p := range m.Positions() {
				h.Add(p.X, p.Y)
			}
		}
		m.Step()
	}
	return h
}

// WaypointDensity returns the Bettstetter–Resta–Santi polynomial
// approximation of the random waypoint's stationary positional density on
// the square [0, L]²:
//
//	f(x, y) ≈ (36 / L⁶) · x (L − x) · y (L − y)
//
// It integrates to 1 over the square and exhibits the center bias the paper
// emphasizes ("highly biased towards the center of the square"): the center
// density is 2.25/L², 2.25× uniform.
func WaypointDensity(x, y, L float64) float64 {
	if x < 0 || x > L || y < 0 || y > L {
		return 0
	}
	return 36 / math.Pow(L, 6) * x * (L - x) * y * (L - y)
}

// UniformityReport captures the measured constants of Corollary 4's
// conditions on a positional density F over a square region R of side L:
//
//	(a) ∀u: F(u) <= δ / vol(R)            — Delta is the smallest such δ
//	(b) ∃B:  vol(B_r) >= λ vol(R) and F >= 1/(δ vol(R)) on B
//	                                       — Lambda is the measured λ
type UniformityReport struct {
	Delta  float64 // sup F · vol(R)
	Lambda float64 // vol(B_r) / vol(R) for B = {F >= 1/(δ vol)}
	// TVToUniform is the total-variation distance of the cell distribution
	// from uniform — a scalar summary of how non-uniform the density is.
	TVToUniform float64
}

// MeasureUniformity computes the Corollary 4 constants from an empirical
// density histogram. r is the transmission radius: B_r keeps only the cells
// all of whose neighbors within distance r also lie in B, the discrete
// version of "D(u, r) ⊆ B".
func MeasureUniformity(h *stats.Hist2D, L, r float64) UniformityReport {
	density := h.Density()
	vol := L * L
	sup := 0.0
	for _, d := range density {
		if d > sup {
			sup = d
		}
	}
	delta := sup * vol
	// B: cells with density >= 1/(δ·vol), per condition (b). For a uniform
	// density (δ = 1) the threshold equals the density everywhere, so B is
	// the whole square.
	threshold := 1 / (delta * vol)
	bins := h.Bins
	inB := make([]bool, bins*bins)
	for i, d := range density {
		inB[i] = d >= threshold
	}
	// B_r: cells whose whole r-neighborhood (in cell units) lies in B.
	side := L / float64(bins)
	reach := int(math.Ceil(r / side))
	inBr := 0
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			if !inB[i*bins+j] {
				continue
			}
			ok := true
			for di := -reach; di <= reach && ok; di++ {
				for dj := -reach; dj <= reach && ok; dj++ {
					ni, nj := i+di, j+dj
					if ni < 0 || ni >= bins || nj < 0 || nj >= bins {
						ok = false // the r-ball leaves the region
						break
					}
					if !inB[ni*bins+nj] {
						ok = false
					}
				}
			}
			if ok {
				inBr++
			}
		}
	}
	return UniformityReport{
		Delta:       delta,
		Lambda:      float64(inBr) / float64(bins*bins),
		TVToUniform: h.TVToUniform(),
	}
}

// DensityTVToAnalytic compares an empirical positional histogram with a
// reference density f(x, y) (e.g. WaypointDensity), returning the
// total-variation distance between the two cell distributions.
func DensityTVToAnalytic(h *stats.Hist2D, L float64, f func(x, y float64) float64) float64 {
	bins := h.Bins
	side := L / float64(bins)
	ref := make([]float64, bins*bins)
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			x, y := h.CellCenter(i, j)
			ref[i*bins+j] = f(x, y) * side * side
		}
	}
	stats.Normalize(ref)
	emp := stats.CountsToDist(h.Counts)
	return stats.TV(emp, ref)
}
