package mobility

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/nodemeg"
	"repro/internal/rng"
)

// DiscreteWaypoint builds the exact discretized random waypoint chain of
// Section 4.1 on an m x m grid with unit speed, as a sparse Markov chain
// suitable for exact stationary-distribution and mixing-time computation.
//
// State encoding: state = cur·m² + dest, where cur and dest are flat grid
// indices (i·m + j). Transitions follow the paper's description — "when a
// node is in some internal point of a path the choice of his next state is
// deterministic while when he arrives at the end of a path, his next state
// is randomly chosen by selecting the next destination point" — with
// L-shaped (Manhattan) trajectories: the node first aligns its row with the
// destination, then its column.
//
// Substitution note (recorded in DESIGN.md): the continuous model travels
// on straight Euclidean segments, whose exact discretization needs the trip
// origin in the state. L-shaped trips keep (cur, dest) Markovian with m⁴
// states, preserve the Θ(L/v) mixing time and the center-biased stationary
// positional law, and match the Manhattan-waypoint variant analyzed in the
// paper's reference [13].
func DiscreteWaypoint(m int) (*markov.Sparse, error) {
	if m < 2 {
		return nil, fmt.Errorf("mobility: DiscreteWaypoint needs m >= 2, got %d", m)
	}
	points := m * m
	states := points * points
	b := markov.NewSparseBuilder(states)
	uniform := 1 / float64(points)
	for cur := 0; cur < points; cur++ {
		ci, cj := cur/m, cur%m
		for dest := 0; dest < points; dest++ {
			s := cur*points + dest
			if cur == dest {
				// Trip finished: draw a fresh uniform destination (possibly
				// the current point, in which case the node idles a step —
				// the standard convention for discrete waypoint chains).
				for nd := 0; nd < points; nd++ {
					b.Set(s, cur*points+nd, uniform)
				}
				continue
			}
			di, dj := dest/m, dest%m
			// L-shaped movement: align row first, then column.
			ni, nj := ci, cj
			switch {
			case ci < di:
				ni = ci + 1
			case ci > di:
				ni = ci - 1
			case cj < dj:
				nj = cj + 1
			default:
				nj = cj - 1
			}
			b.Set(s, (ni*m+nj)*points+dest, 1)
		}
	}
	return b.Build()
}

// PositionalFromStateDist collapses a distribution over DiscreteWaypoint
// states to the positional distribution over the m² grid points.
func PositionalFromStateDist(stateDist []float64, m int) []float64 {
	points := m * m
	pos := make([]float64, points)
	for s, p := range stateDist {
		pos[s/points] += p
	}
	return pos
}

// samePosition connects two (cur, dest) waypoint states exactly when
// their current grid points coincide.
type samePosition struct {
	points int
	states [][]int32 // per point: all states currently at that point
}

func newSamePosition(points int) samePosition {
	c := samePosition{points: points, states: make([][]int32, points)}
	for p := 0; p < points; p++ {
		row := make([]int32, points)
		for d := 0; d < points; d++ {
			row[d] = int32(p*points + d)
		}
		c.states[p] = row
	}
	return c
}

// NumStates implements nodemeg.ConnectionMap.
func (c samePosition) NumStates() int { return c.points * c.points }

// Connected implements nodemeg.ConnectionMap.
func (c samePosition) Connected(u, v int) bool { return u/c.points == v/c.points }

// NeighborStates implements nodemeg.NeighborEnumerator.
func (c samePosition) NeighborStates(s int) []int32 { return c.states[s/c.points] }

// DiscreteWaypointSim simulates n nodes independently following the
// discretized waypoint chain on an m×m grid, connected when co-located —
// the exact node-MEG realization of the Section 4.1 discretization,
// started from the chain's stationary law.
type DiscreteWaypointSim struct {
	*nodemeg.Sim
	m     int
	chain *markov.Sparse
	pi    []float64
}

// NewDiscreteWaypointSim builds the simulation.
func NewDiscreteWaypointSim(n, m int, r *rng.RNG) (*DiscreteWaypointSim, error) {
	chain, err := DiscreteWaypoint(m)
	if err != nil {
		return nil, err
	}
	pi, err := chain.StationaryPower(1e-10, 200000)
	if err != nil {
		return nil, fmt.Errorf("mobility: discrete waypoint stationary: %w", err)
	}
	sim, err := nodemeg.NewSim(n, markov.NewSparseSampler(chain), newSamePosition(m*m), pi, r)
	if err != nil {
		return nil, fmt.Errorf("mobility: building discrete waypoint sim: %w", err)
	}
	return &DiscreteWaypointSim{Sim: sim, m: m, chain: chain, pi: pi}, nil
}

// MixingChain implements model.ChainAnalyzer.
func (s *DiscreteWaypointSim) MixingChain() (*markov.Sparse, []float64) { return s.chain, s.pi }

// DiscreteWaypointMixing computes the exact stationary distribution of the
// discretized waypoint chain and its single-start mixing time from a corner
// state, returning (positional distribution, mixing time). The corner is
// the slowest-mixing start by symmetry. eps is the TV threshold and maxT
// the search cap.
func DiscreteWaypointMixing(m int, eps float64, maxT int) (posDist []float64, tmix int, err error) {
	chain, err := DiscreteWaypoint(m)
	if err != nil {
		return nil, 0, err
	}
	pi, err := chain.StationaryPower(1e-10, 200000)
	if err != nil {
		return nil, 0, fmt.Errorf("mobility: discrete waypoint stationary: %w", err)
	}
	// Corner start: cur = dest = point (0,0), i.e. state 0.
	tmix, err = chain.MixingTimeFromStart(0, pi, eps, maxT)
	if err != nil {
		return nil, 0, err
	}
	return PositionalFromStateDist(pi, m), tmix, nil
}
