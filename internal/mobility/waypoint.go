// Package mobility implements the geometric mobility models of Section 4.1:
// the random waypoint over a square (continuous kinematics plus an exact
// discretized Markov chain for small grids), the classic random-walk model
// on a grid, and a random-direction model. It also provides the positional
// stationary density machinery of Corollary 4: empirical density histograms,
// the Bettstetter analytic waypoint density, and measurement of the
// uniformity constants δ and λ.
package mobility

import (
	"fmt"
	"math"

	"repro/internal/geometry"
	"repro/internal/rng"
)

// WaypointParams configures a random waypoint model over the square
// [0, L]²: each node repeatedly picks a uniform destination and a uniform
// speed in [VMin, VMax], travels to the destination in a straight line, and
// repeats. Two nodes are connected when within Euclidean distance R.
type WaypointParams struct {
	N    int     // number of nodes
	L    float64 // side of the square
	R    float64 // transmission radius
	VMin float64 // minimum speed (distance per time step)
	VMax float64 // maximum speed
	// Pause is the number of steps a node rests at each destination before
	// starting its next trip (the classic waypoint "pause time"). Pause-heavy
	// workloads move only a small fraction of nodes per step, which the
	// incremental cell list and native delta stream turn into O(moved)
	// dynamics. Pause = 0 reproduces the pause-free process exactly, draw
	// for draw.
	Pause int
}

// Validate checks the parameters. The paper assumes VMax = Θ(VMin); we only
// require 0 < VMin <= VMax.
func (p WaypointParams) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("mobility: need N >= 1, got %d", p.N)
	}
	if p.L <= 0 {
		return fmt.Errorf("mobility: need L > 0, got %v", p.L)
	}
	if p.R <= 0 {
		return fmt.Errorf("mobility: need R > 0, got %v", p.R)
	}
	if p.VMin <= 0 || p.VMax < p.VMin {
		return fmt.Errorf("mobility: need 0 < VMin <= VMax, got [%v, %v]", p.VMin, p.VMax)
	}
	if p.Pause < 0 {
		return fmt.Errorf("mobility: need Pause >= 0, got %d", p.Pause)
	}
	return nil
}

// MixingTimeEstimate returns the Θ(L/VMax) mixing-time scale of the
// waypoint chain quoted in Section 4.1 (from [1, 29]).
func (p WaypointParams) MixingTimeEstimate() float64 { return p.L / p.VMax }

// WaypointInit selects the initial distribution of a waypoint simulation.
type WaypointInit int

const (
	// InitUniform places nodes uniformly with a fresh trip each — the
	// standard (non-stationary) start; warm up before measuring.
	InitUniform WaypointInit = iota
	// InitSteadyState samples the exact steady-state trip distribution
	// (Camp–Navidi–Bauer / Le Boudec perfect simulation): trips weighted
	// by length, position uniform along the trip, speed weighted by 1/v.
	InitSteadyState
)

// Waypoint simulates the random waypoint model; it implements
// dyngraph.Dynamic.
type Waypoint struct {
	params WaypointParams
	r      *rng.RNG
	pos    []geometry.Point
	dest   []geometry.Point
	speed  []float64
	wait   []int32 // remaining pause steps per node (all zero when Pause == 0)
	cells  *geometry.CellList
	delta  geomDelta // incremental churn engine (native DeltaBatcher)
}

// NewWaypoint builds a waypoint simulation. It panics on invalid parameters
// (call Validate for error handling).
func NewWaypoint(params WaypointParams, init WaypointInit, r *rng.RNG) *Waypoint {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	w := &Waypoint{
		params: params,
		r:      r,
		pos:    make([]geometry.Point, params.N),
		dest:   make([]geometry.Point, params.N),
		speed:  make([]float64, params.N),
		wait:   make([]int32, params.N),
	}
	for i := range w.pos {
		switch init {
		case InitUniform:
			w.pos[i] = w.uniformPoint()
			w.dest[i] = w.uniformPoint()
			w.speed[i] = r.Range(params.VMin, params.VMax)
		case InitSteadyState:
			w.pos[i], w.dest[i], w.speed[i] = w.steadyStateTrip()
		default:
			panic("mobility: unknown WaypointInit")
		}
	}
	w.cells = geometry.NewCellList(geometry.Square(params.L), params.R, w.pos)
	return w
}

func (w *Waypoint) uniformPoint() geometry.Point {
	return geometry.Point{
		X: w.r.Float64() * w.params.L,
		Y: w.r.Float64() * w.params.L,
	}
}

// steadyStateTrip samples (position, destination, speed) from the
// steady-state law of the waypoint process:
//
//   - the trip endpoints (A, B) are chosen with density proportional to
//     |AB| (longer trips occupy more time), via rejection against the
//     maximum distance L√2;
//   - the current position is uniform along the segment AB, and the
//     remaining destination is B;
//   - the speed has density proportional to 1/v on [VMin, VMax] (slower
//     trips occupy more time), sampled by inversion.
func (w *Waypoint) steadyStateTrip() (pos, dest geometry.Point, speed float64) {
	maxDist := w.params.L * 1.4142135623730951
	var a, b geometry.Point
	for {
		a, b = w.uniformPoint(), w.uniformPoint()
		d := geometry.Dist(a, b)
		if d > 0 && w.r.Float64() < d/maxDist {
			break
		}
	}
	pos = geometry.Lerp(a, b, w.r.Float64())
	// Inverse-CDF for f(v) ∝ 1/v: v = vmin · (vmax/vmin)^U.
	u := w.r.Float64()
	ratio := w.params.VMax / w.params.VMin
	speed = w.params.VMin * math.Pow(ratio, u)
	return pos, b, speed
}

// N implements dyngraph.Dynamic.
func (w *Waypoint) N() int { return w.params.N }

// Step implements dyngraph.Dynamic: every node advances along its trip by
// its speed; nodes arriving at their destination draw a fresh trip and
// rest there for Pause steps. The new positions are staged and committed
// through the incremental churn engine, so cell-list maintenance and the
// per-step delta batches cost O(moved × local density) instead of a full
// rebuild — with Pause = 0 the trajectory is draw-for-draw identical to
// the historical rebuild-per-step implementation.
func (w *Waypoint) Step() {
	next := w.delta.stage(len(w.pos))
	for i := range w.pos {
		if w.wait[i] > 0 {
			w.wait[i]--
			next[i] = w.pos[i]
			continue
		}
		np, reached := geometry.StepToward(w.pos[i], w.dest[i], w.speed[i])
		next[i] = np
		if reached {
			w.dest[i] = w.uniformPoint()
			w.speed[i] = w.r.Range(w.params.VMin, w.params.VMax)
			w.wait[i] = int32(w.params.Pause)
		}
	}
	w.delta.commit(w.pos, w.cells, w.params.R*w.params.R)
}

// ForEachNeighbor implements dyngraph.Dynamic: neighbors are nodes within
// distance R.
func (w *Waypoint) ForEachNeighbor(i int, fn func(j int)) {
	w.cells.ForEachWithin(i, fn)
}

// WarmUp advances the simulation steps times, used to approach the
// stationary regime from InitUniform. A common choice is several multiples
// of MixingTimeEstimate().
func (w *Waypoint) WarmUp(steps int) {
	for t := 0; t < steps; t++ {
		w.Step()
	}
}

// Positions returns the current node positions; the slice is shared and
// must not be modified.
func (w *Waypoint) Positions() []geometry.Point { return w.pos }
