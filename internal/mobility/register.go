package mobility

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/rng"
)

// MixingChain implements model.ChainAnalyzer with the per-node movement
// chain of the walk node-MEG.
func (w *Walk) MixingChain() (*markov.Sparse, []float64) { return w.chain, w.pi }

func init() {
	model.Register(model.Definition{
		Name: "waypoint",
		Help: "random waypoint over [0,L]²: straight trips to uniform destinations, radius-R connection",
		Params: []model.Param{
			{Name: "n", Kind: model.Int, Default: "200", Help: "nodes"},
			{Name: "L", Kind: model.Float, Default: "25", Help: "side of the square"},
			{Name: "r", Kind: model.Float, Default: "1.5", Help: "transmission radius"},
			{Name: "vmin", Kind: model.Float, Default: "1", Help: "minimum speed"},
			{Name: "vmax", Kind: model.Float, Default: "0", Help: "maximum speed (0 means vmin)"},
			{Name: "pause", Kind: model.Int, Default: "0", Help: "steps to rest at each destination before the next trip"},
			{Name: "init", Kind: model.String, Default: "steady", Help: "initial law: steady (perfect simulation) | uniform"},
			{Name: "warmup", Kind: model.Int, Default: "0", Help: "steps to advance before use"},
		},
		Build: func(a model.Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			vmin, vmax := a.Float("vmin"), a.Float("vmax")
			if vmax == 0 {
				vmax = vmin
			}
			params := WaypointParams{
				N: a.Int("n"), L: a.Float("L"), R: a.Float("r"),
				VMin: vmin, VMax: vmax, Pause: a.Int("pause"),
			}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			var init WaypointInit
			switch text := a.String("init"); text {
			case "steady":
				init = InitSteadyState
			case "uniform":
				init = InitUniform
			default:
				return nil, fmt.Errorf("mobility: unknown waypoint init %q (want steady or uniform)", text)
			}
			w := NewWaypoint(params, init, r)
			w.WarmUp(a.Int("warmup"))
			return w, nil
		},
	})

	model.Register(model.Definition{
		Name: "walk",
		Help: "random-walk mobility on an m×m grid, grid-radius connection (a node-MEG)",
		Params: []model.Param{
			{Name: "n", Kind: model.Int, Default: "100", Help: "nodes"},
			{Name: "m", Kind: model.Int, Default: "16", Help: "grid side"},
			{Name: "r", Kind: model.Float, Default: "1", Help: "connection radius in grid units (0: same point only)"},
			{Name: "stay", Kind: model.Float, Default: "0.2", Help: "laziness (per-step stay probability)"},
			{Name: "rho", Kind: model.Int, Default: "0", Help: "movement range in hops (>1: ball walk)"},
		},
		Build: func(a model.Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			return NewWalk(WalkParams{
				N: a.Int("n"), M: a.Int("m"), R: a.Float("r"),
				Stay: a.Float("stay"), Rho: a.Int("rho"),
			}, r)
		},
	})

	model.Register(model.Definition{
		Name: "direction",
		Help: "random-direction model over [0,L]²: constant-speed headings with reflection (uniform stationary law)",
		Params: []model.Param{
			{Name: "n", Kind: model.Int, Default: "200", Help: "nodes"},
			{Name: "L", Kind: model.Float, Default: "25", Help: "side of the square"},
			{Name: "r", Kind: model.Float, Default: "1.5", Help: "transmission radius"},
			{Name: "speed", Kind: model.Float, Default: "1", Help: "node speed"},
			{Name: "turn", Kind: model.Float, Default: "0.1", Help: "per-step heading-redraw probability"},
			{Name: "warmup", Kind: model.Int, Default: "0", Help: "steps to advance before use"},
		},
		Build: func(a model.Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			params := DirectionParams{
				N: a.Int("n"), L: a.Float("L"), R: a.Float("r"),
				Speed: a.Float("speed"), Turn: a.Float("turn"),
			}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			d := NewDirection(params, r)
			d.WarmUp(a.Int("warmup"))
			return d, nil
		},
	})

	model.Register(model.Definition{
		Name: "dwaypoint",
		Help: "discretized waypoint chain on an m×m grid with same-point connection (exact Section 4.1 chain)",
		Params: []model.Param{
			{Name: "n", Kind: model.Int, Default: "50", Help: "nodes"},
			{Name: "m", Kind: model.Int, Default: "6", Help: "grid side (chain has m⁴ states)"},
		},
		Build: func(a model.Args, r *rng.RNG) (dyngraph.Dynamic, error) {
			return NewDiscreteWaypointSim(a.Int("n"), a.Int("m"), r)
		},
	})
}
