package mobility

import (
	"repro/internal/dyngraph"
	"repro/internal/geometry"
)

// geomDelta is the shared O(moved × local density) churn engine behind the
// native dyngraph.DeltaBatcher implementations of the continuous mobility
// models (Waypoint, Direction, RegionWaypoint). An edge can only flip when
// an endpoint moved, so each step compares the old and new within-radius
// sets of just the moved nodes against the 3×3 cell neighborhood instead of
// diffing full snapshots (the Deltifier's O(m log m) sort-merge):
//
//  1. the model stages every node's new position into next (writing
//     next[i] == pos[i] for nodes that stay put), preserving its exact RNG
//     draw order;
//  2. pass A, against the still-old cell list: for every moved i, each old
//     neighbor j (old distance ≤ R) whose new distance exceeds R is a died
//     edge;
//  3. the moves are applied — pos, prev, and the cell list's incremental
//     Move — touching O(moved) index state;
//  4. pass B, against the updated cell list: for every moved i, each new
//     neighbor j (new distance ≤ R) whose old distance exceeded R is a
//     born edge.
//
// Pairs where both endpoints moved are seen from both sides; the ascending
// scan dedupes them by skipping the candidate j when movedF[j] && j < i
// (the pair was classified at the smaller index). Born requires an old
// distance > R and died an old distance ≤ R, so the batches are disjoint,
// and both passes run entirely before/after the apply step, so each pass
// sees one consistent configuration. All buffers persist across steps:
// warm steps allocate nothing.
type geomDelta struct {
	next   []geometry.Point // staged post-step positions, all nodes
	prev   []geometry.Point // pre-step positions, valid where movedF
	moved  []int32          // nodes whose position changed this step, ascending
	movedF []bool           // membership flags for moved
	nbrs   []int32          // cell-query scratch
	born   []dyngraph.Edge
	died   []dyngraph.Edge
	// stepped gates AppendDeltas: before the first Step the batches are
	// empty by the DeltaBatcher contract.
	stepped bool
}

// stage sizes the buffers for n nodes and returns the next-position buffer
// the model's step loop writes into. Nodes that do not move must be staged
// at their current position.
func (g *geomDelta) stage(n int) []geometry.Point {
	if cap(g.next) < n {
		g.next = make([]geometry.Point, n)
		g.prev = make([]geometry.Point, n)
		g.movedF = make([]bool, n)
	}
	return g.next[:n]
}

// commit classifies the staged step's churn into born/died and applies the
// moves to pos and cells. r2 is the squared connection radius (equal to the
// cell list's query radius).
func (g *geomDelta) commit(pos []geometry.Point, cells *geometry.CellList, r2 float64) {
	next := g.next[:len(pos)]
	prev := g.prev[:len(pos)]
	movedF := g.movedF[:len(pos)]
	g.moved = g.moved[:0]
	g.born, g.died = g.born[:0], g.died[:0]
	for i, p := range pos {
		if next[i] != p {
			movedF[i] = true
			g.moved = append(g.moved, int32(i))
		}
	}
	// Pass A (died): old neighbors of each moved node, old configuration.
	for _, i := range g.moved {
		g.nbrs = cells.AppendWithin(int(i), g.nbrs[:0])
		for _, j := range g.nbrs {
			if movedF[j] && j < i {
				continue
			}
			if geometry.Dist2(next[i], next[j]) > r2 {
				g.died = append(g.died, orderEdge(i, j))
			}
		}
	}
	// Apply: positions and incremental cell maintenance, O(moved).
	for _, i := range g.moved {
		prev[i] = pos[i]
		pos[i] = next[i]
		cells.Move(int(i), next[i])
	}
	// Pass B (born): new neighbors of each moved node, new configuration.
	// For an unmoved candidate j the old position is pos[j] (unchanged);
	// for a moved one it is prev[j].
	for _, i := range g.moved {
		g.nbrs = cells.AppendWithin(int(i), g.nbrs[:0])
		for _, j := range g.nbrs {
			if movedF[j] && j < i {
				continue
			}
			oldJ := pos[j]
			if movedF[j] {
				oldJ = prev[j]
			}
			if geometry.Dist2(prev[i], oldJ) > r2 {
				g.born = append(g.born, orderEdge(i, j))
			}
		}
	}
	for _, i := range g.moved {
		movedF[i] = false
	}
	g.stepped = true
}

// appendDeltas serves the retained batches; idempotent between steps.
func (g *geomDelta) appendDeltas(born, died []dyngraph.Edge) (b, d []dyngraph.Edge) {
	if !g.stepped {
		return born, died
	}
	return append(born, g.born...), append(died, g.died...)
}

// movedLastStep reports how many nodes changed position in the most recent
// step (0 before the first step).
func (g *geomDelta) movedLastStep() int { return len(g.moved) }

func orderEdge(i, j int32) dyngraph.Edge {
	if i < j {
		return dyngraph.Edge{U: i, V: j}
	}
	return dyngraph.Edge{U: j, V: i}
}

// AppendDeltas implements dyngraph.DeltaBatcher.
func (w *Waypoint) AppendDeltas(born, died []dyngraph.Edge) (b, d []dyngraph.Edge) {
	return w.delta.appendDeltas(born, died)
}

// MovedLastStep implements dyngraph.MoveReporter.
func (w *Waypoint) MovedLastStep() int { return w.delta.movedLastStep() }

// AppendDeltas implements dyngraph.DeltaBatcher.
func (d *Direction) AppendDeltas(born, died []dyngraph.Edge) (b, dd []dyngraph.Edge) {
	return d.delta.appendDeltas(born, died)
}

// MovedLastStep implements dyngraph.MoveReporter.
func (d *Direction) MovedLastStep() int { return d.delta.movedLastStep() }

// AppendDeltas implements dyngraph.DeltaBatcher.
func (w *RegionWaypoint) AppendDeltas(born, died []dyngraph.Edge) (b, d []dyngraph.Edge) {
	return w.delta.appendDeltas(born, died)
}

// MovedLastStep implements dyngraph.MoveReporter.
func (w *RegionWaypoint) MovedLastStep() int { return w.delta.movedLastStep() }
