package mobility

import (
	"math"

	"repro/internal/geometry"
	"repro/internal/rng"
)

// Region is a bounded connected subset of the plane over which a random
// trip model runs — Corollary 4 covers "any bounded connected region
// R ⊆ R^d"; this interface realizes the d = 2 case. Implementations must
// be convex so that straight waypoint trips stay inside.
type Region interface {
	// Contains reports whether p lies in the region.
	Contains(p geometry.Point) bool
	// Sample returns a uniform point of the region.
	Sample(r *rng.RNG) geometry.Point
	// Bounds returns an axis-aligned bounding rectangle.
	Bounds() geometry.Rect
	// Area returns vol(R).
	Area() float64
}

// SquareRegion is the square [0, L]².
type SquareRegion struct {
	L float64
}

var _ Region = SquareRegion{}

// Contains implements Region.
func (s SquareRegion) Contains(p geometry.Point) bool {
	return geometry.Square(s.L).Contains(p)
}

// Sample implements Region.
func (s SquareRegion) Sample(r *rng.RNG) geometry.Point {
	return geometry.Point{X: r.Float64() * s.L, Y: r.Float64() * s.L}
}

// Bounds implements Region.
func (s SquareRegion) Bounds() geometry.Rect { return geometry.Square(s.L) }

// Area implements Region.
func (s SquareRegion) Area() float64 { return s.L * s.L }

// DiskRegion is the disk of the given radius centered at (Radius, Radius),
// so its bounding box starts at the origin.
type DiskRegion struct {
	Radius float64
}

var _ Region = DiskRegion{}

// center returns the disk center.
func (d DiskRegion) center() geometry.Point {
	return geometry.Point{X: d.Radius, Y: d.Radius}
}

// Contains implements Region.
func (d DiskRegion) Contains(p geometry.Point) bool {
	return geometry.Dist(p, d.center()) <= d.Radius
}

// Sample implements Region using the exact polar method (radius ∝ √U).
func (d DiskRegion) Sample(r *rng.RNG) geometry.Point {
	rad := d.Radius * math.Sqrt(r.Float64())
	theta := r.Float64() * 2 * math.Pi
	c := d.center()
	return geometry.Point{X: c.X + rad*math.Cos(theta), Y: c.Y + rad*math.Sin(theta)}
}

// Bounds implements Region.
func (d DiskRegion) Bounds() geometry.Rect {
	return geometry.Square(2 * d.Radius)
}

// Area implements Region.
func (d DiskRegion) Area() float64 { return math.Pi * d.Radius * d.Radius }

// RegionWaypoint simulates the random waypoint model over an arbitrary
// convex Region; it implements dyngraph.Dynamic. Waypoint over the square
// (the Waypoint type) is the special case Region = SquareRegion, kept
// separate for its closed-form density comparisons.
type RegionWaypoint struct {
	region Region
	radius float64
	vmin   float64
	vmax   float64
	r      *rng.RNG
	pos    []geometry.Point
	dest   []geometry.Point
	speed  []float64
	cells  *geometry.CellList
	delta  geomDelta // incremental churn engine (native DeltaBatcher)
}

// NewRegionWaypoint builds the model with steady-state trip initialization
// (trips weighted by length, position uniform along the trip, speed ∝ 1/v).
func NewRegionWaypoint(n int, region Region, radius, vmin, vmax float64, r *rng.RNG) *RegionWaypoint {
	if n < 1 || radius <= 0 || vmin <= 0 || vmax < vmin {
		panic("mobility: invalid RegionWaypoint parameters")
	}
	w := &RegionWaypoint{
		region: region,
		radius: radius,
		vmin:   vmin,
		vmax:   vmax,
		r:      r,
		pos:    make([]geometry.Point, n),
		dest:   make([]geometry.Point, n),
		speed:  make([]float64, n),
	}
	bounds := region.Bounds()
	maxDist := math.Hypot(bounds.W(), bounds.H())
	for i := range w.pos {
		// Steady-state trip sampling, as in Waypoint.steadyStateTrip.
		var a, b geometry.Point
		for {
			a, b = region.Sample(r), region.Sample(r)
			d := geometry.Dist(a, b)
			if d > 0 && r.Float64() < d/maxDist {
				break
			}
		}
		w.pos[i] = geometry.Lerp(a, b, r.Float64())
		w.dest[i] = b
		u := r.Float64()
		w.speed[i] = vmin * math.Pow(vmax/vmin, u)
	}
	w.cells = geometry.NewCellList(bounds, radius, w.pos)
	return w
}

// N implements dyngraph.Dynamic.
func (w *RegionWaypoint) N() int { return len(w.pos) }

// Step implements dyngraph.Dynamic. New positions are staged and committed
// through the incremental churn engine (see Waypoint.Step); the kinematics
// and RNG draw order are unchanged from the rebuild-per-step original.
func (w *RegionWaypoint) Step() {
	next := w.delta.stage(len(w.pos))
	for i := range w.pos {
		np, reached := geometry.StepToward(w.pos[i], w.dest[i], w.speed[i])
		next[i] = np
		if reached {
			w.dest[i] = w.region.Sample(w.r)
			w.speed[i] = w.r.Range(w.vmin, w.vmax)
		}
	}
	w.delta.commit(w.pos, w.cells, w.radius*w.radius)
}

// ForEachNeighbor implements dyngraph.Dynamic.
func (w *RegionWaypoint) ForEachNeighbor(i int, fn func(j int)) {
	w.cells.ForEachWithin(i, fn)
}

// Positions returns current positions (shared; do not modify).
func (w *RegionWaypoint) Positions() []geometry.Point { return w.pos }
