package mobility

import (
	"repro/internal/dyngraph"
	"repro/internal/geometry"
)

// appendCellEdges converts the cell list's pair enumeration into dyngraph
// edges. The cell list checks each candidate pair once, so producing the
// whole snapshot costs half of what per-node radius queries from every
// node would; the pair scratch lives in the cell list itself, so warm
// batch views never reallocate.
func appendCellEdges(cells *geometry.CellList, dst []dyngraph.Edge) []dyngraph.Edge {
	for _, p := range cells.Pairs() {
		dst = append(dst, dyngraph.Edge{U: p[0], V: p[1]})
	}
	return dst
}

// AppendEdges implements dyngraph.Batcher via the cell list.
func (w *Waypoint) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	return appendCellEdges(w.cells, dst)
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (w *Waypoint) AppendNeighbors(i int, dst []int32) []int32 {
	return w.cells.AppendWithin(i, dst)
}

// AppendEdges implements dyngraph.Batcher via the cell list.
func (d *Direction) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	return appendCellEdges(d.cells, dst)
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (d *Direction) AppendNeighbors(i int, dst []int32) []int32 {
	return d.cells.AppendWithin(i, dst)
}

// AppendEdges implements dyngraph.Batcher via the cell list.
func (w *RegionWaypoint) AppendEdges(dst []dyngraph.Edge) []dyngraph.Edge {
	return appendCellEdges(w.cells, dst)
}

// AppendNeighbors implements dyngraph.NeighborLister.
func (w *RegionWaypoint) AppendNeighbors(i int, dst []int32) []int32 {
	return w.cells.AppendWithin(i, dst)
}
