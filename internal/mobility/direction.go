package mobility

import (
	"fmt"
	"math"

	"repro/internal/geometry"
	"repro/internal/rng"
)

// DirectionParams configures a random-direction model over [0, L]²: each
// node moves with constant speed along a heading, reflects off the walls,
// and redraws a uniform heading with probability Turn each step. Unlike the
// waypoint model its stationary positional density is uniform, which makes
// it a useful contrast in the Corollary 4 experiments (δ ≈ 1 exactly).
type DirectionParams struct {
	N     int
	L     float64
	R     float64
	Speed float64
	Turn  float64 // per-step probability of redrawing the heading
}

// Validate checks the parameters.
func (p DirectionParams) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("mobility: need N >= 1, got %d", p.N)
	}
	if p.L <= 0 || p.R <= 0 || p.Speed <= 0 {
		return fmt.Errorf("mobility: need positive L, R, Speed")
	}
	if p.Turn < 0 || p.Turn > 1 {
		return fmt.Errorf("mobility: need 0 <= Turn <= 1, got %v", p.Turn)
	}
	return nil
}

// Direction simulates the random-direction model; it implements
// dyngraph.Dynamic.
type Direction struct {
	params  DirectionParams
	r       *rng.RNG
	pos     []geometry.Point
	heading []float64
	cells   *geometry.CellList
	delta   geomDelta // incremental churn engine (native DeltaBatcher)
}

// NewDirection builds the simulation with uniform positions and headings
// (which is already the stationary law of this model).
func NewDirection(params DirectionParams, r *rng.RNG) *Direction {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	d := &Direction{
		params:  params,
		r:       r,
		pos:     make([]geometry.Point, params.N),
		heading: make([]float64, params.N),
	}
	for i := range d.pos {
		d.pos[i] = geometry.Point{X: r.Float64() * params.L, Y: r.Float64() * params.L}
		d.heading[i] = r.Float64() * 2 * math.Pi
	}
	d.cells = geometry.NewCellList(geometry.Square(params.L), params.R, d.pos)
	return d
}

// N implements dyngraph.Dynamic.
func (d *Direction) N() int { return d.params.N }

// Step implements dyngraph.Dynamic. New positions are staged and committed
// through the incremental churn engine (see Waypoint.Step); the kinematics
// and RNG draw order are unchanged from the rebuild-per-step original.
func (d *Direction) Step() {
	next := d.delta.stage(len(d.pos))
	L := d.params.L
	for i := range d.pos {
		if d.r.Bool(d.params.Turn) {
			d.heading[i] = d.r.Float64() * 2 * math.Pi
		}
		nx := d.pos[i].X + d.params.Speed*math.Cos(d.heading[i])
		ny := d.pos[i].Y + d.params.Speed*math.Sin(d.heading[i])
		// Reflect off the walls, adjusting the heading accordingly.
		if nx < 0 {
			nx = -nx
			d.heading[i] = math.Pi - d.heading[i]
		} else if nx > L {
			nx = 2*L - nx
			d.heading[i] = math.Pi - d.heading[i]
		}
		if ny < 0 {
			ny = -ny
			d.heading[i] = -d.heading[i]
		} else if ny > L {
			ny = 2*L - ny
			d.heading[i] = -d.heading[i]
		}
		// A pathological speed > L could still escape after one reflection;
		// clamp as a safety net.
		next[i] = geometry.Square(L).Clamp(geometry.Point{X: nx, Y: ny})
	}
	d.delta.commit(d.pos, d.cells, d.params.R*d.params.R)
}

// ForEachNeighbor implements dyngraph.Dynamic.
func (d *Direction) ForEachNeighbor(i int, fn func(j int)) {
	d.cells.ForEachWithin(i, fn)
}

// Positions returns current positions (shared slice; do not modify).
func (d *Direction) Positions() []geometry.Point { return d.pos }

// WarmUp advances the simulation steps times.
func (d *Direction) WarmUp(steps int) {
	for t := 0; t < steps; t++ {
		d.Step()
	}
}
