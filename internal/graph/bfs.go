package graph

// BFS returns the vector of hop distances from src, with -1 for unreachable
// vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst (inclusive of both
// endpoints) or nil if dst is unreachable. Ties are broken toward the
// smallest-index predecessor, making the result deterministic.
func (g *Graph) ShortestPath(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int32, g.n)
	for i := range prev {
		prev[i] = -2 // unvisited
	}
	prev[src] = -1 // root marker
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if int(v) == dst {
			break
		}
		for _, u := range g.adj[v] {
			if prev[u] == -2 {
				prev[u] = v
				queue = append(queue, u)
			}
		}
	}
	if prev[dst] == -2 {
		return nil
	}
	// Reconstruct backwards.
	path := []int{dst}
	for v := prev[dst]; v != -1; v = prev[v] {
		path = append(path, int(v))
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Components returns the connected component id of each vertex and the
// number of components. Ids are assigned in increasing order of the smallest
// vertex in each component.
func (g *Graph) Components() (ids []int, count int) {
	ids = make([]int, g.n)
	for i := range ids {
		ids[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if ids[v] != -1 {
			continue
		}
		ids[v] = count
		queue := []int32{int32(v)}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[x] {
				if ids[u] == -1 {
					ids[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return ids, count
}

// IsConnected reports whether the graph is connected. The empty graph on one
// vertex is connected.
func (g *Graph) IsConnected() bool {
	_, c := g.Components()
	return c == 1
}

// Eccentricity returns the maximum finite BFS distance from v, or -1 if some
// vertex is unreachable from v.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	max := 0
	for _, d := range dist {
		if d == -1 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the hop diameter via all-pairs BFS, or -1 for a
// disconnected graph. Cost is O(n·m); intended for the moderate graph sizes
// used in experiments.
func (g *Graph) Diameter() int {
	max := 0
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e == -1 {
			return -1
		}
		if e > max {
			max = e
		}
	}
	return max
}
