package graph

// DegreeStats summarizes the degree sequence of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees returns the graph's degree statistics. For the empty vertex set it
// returns zeros (builders forbid n == 0, so this is defensive only).
func (g *Graph) Degrees() DegreeStats {
	if g.n == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{Min: g.Degree(0), Max: g.Degree(0)}
	total := 0
	for v := 0; v < g.n; v++ {
		d := g.Degree(v)
		total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = float64(total) / float64(g.n)
	return s
}

// DegreeRegularity returns the δ for which the graph is δ-regular in the
// sense of Section 4.1: max degree / min degree. A graph with an isolated
// vertex returns +Inf encoded as a very large value; callers compare against
// thresholds, so we return max degree as the conventional worst case plus
// one to keep it finite and ordered.
func (g *Graph) DegreeRegularity() float64 {
	s := g.Degrees()
	if s.Min == 0 {
		// The paper's definition divides by the minimum degree; a graph with
		// isolated vertices is not δ-regular for any finite δ.
		return float64(g.n) * float64(maxInt(s.Max, 1))
	}
	return float64(s.Max) / float64(s.Min)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AverageDegree returns 2m/n.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// EdgeDensity returns m / (n choose 2), the probability that a uniformly
// random pair is an edge.
func (g *Graph) EdgeDensity() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(g.m) / (float64(g.n) * float64(g.n-1) / 2)
}
