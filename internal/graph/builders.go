package graph

import (
	"repro/internal/rng"
)

// Grid returns the rows x cols lattice graph with 4-neighbor connectivity.
// Vertex (r, c) has index r*cols + c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols lattice with wraparound connectivity.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(idx(r, c), idx(r, c+1))
			b.AddEdge(idx(r, c), idx(r+1, c))
		}
	}
	return b.Build()
}

// KAugmentedGrid returns the rows x cols grid augmented with an edge between
// every pair of vertices at hop (Manhattan) distance at most k, the family
// from Section 4.1 of the paper ("take a grid of s points and add an edge
// between any pair of points whose hop-distance is not larger than k").
// k = 1 gives the plain grid.
func KAugmentedGrid(rows, cols, k int) *Graph {
	if k < 1 {
		panic("graph: KAugmentedGrid needs k >= 1")
	}
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Enumerate the half-plane of offsets to avoid double insertion.
			for dr := 0; dr <= k; dr++ {
				for dc := -k; dc <= k; dc++ {
					if dr == 0 && dc <= 0 {
						continue
					}
					if dr+abs(dc) > k {
						continue
					}
					nr, nc := r+dr, c+dc
					if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
						continue
					}
					b.AddEdge(idx(r, c), idx(nr, nc))
				}
			}
		}
	}
	return b.Build()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// KAugmentedTorus returns the rows x cols torus augmented with an edge
// between every pair of vertices at toroidal hop (Manhattan) distance at
// most k. Unlike KAugmentedGrid it is vertex-transitive, hence 1-regular in
// the δ sense — the clean setting for the k-augmentation comparison of
// Section 4.1. k = 1 gives the plain torus.
func KAugmentedTorus(rows, cols, k int) *Graph {
	if k < 1 {
		panic("graph: KAugmentedTorus needs k >= 1")
	}
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return ((r%rows)+rows)%rows*cols + ((c%cols)+cols)%cols }
	torDist := func(d, size int) int {
		d = ((d % size) + size) % size
		if d > size/2 {
			d = size - d
		}
		return d
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := -k; dr <= k; dr++ {
				for dc := -k; dc <= k; dc++ {
					if dr == 0 && dc == 0 {
						continue
					}
					if torDist(dr, rows)+torDist(dc, cols) > k {
						continue
					}
					b.AddEdge(idx(r, c), idx(r+dr, c+dc))
				}
			}
		}
	}
	return b.Build()
}

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices (n >= 3 for a proper cycle;
// smaller n degenerate to a path or a single vertex).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	if n >= 3 {
		b.AddEdge(n-1, 0)
	}
	return b.Build()
}

// Complete returns the complete graph on n vertices.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Star returns the star graph: vertex 0 is the hub connected to all others.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Gnp returns an Erdős–Rényi random graph G(n, p) drawn with r. For small p
// it uses geometric edge skipping so the cost is O(n + m) instead of O(n²).
func Gnp(n int, p float64, r *rng.RNG) *Graph {
	b := NewBuilder(n)
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	// Walk the implicit edge list {(0,1),(0,2),...} skipping geometrically.
	total := int64(n) * int64(n-1) / 2
	pos := int64(r.Geometric(p))
	for pos < total {
		u, v := edgeFromRank(pos, n)
		b.AddEdge(u, v)
		pos += 1 + int64(r.Geometric(p))
	}
	return b.Build()
}

// edgeFromRank maps a rank in [0, n(n-1)/2) to the corresponding pair
// (u, v) with u < v, ordering edges as (0,1),(0,2),...,(0,n-1),(1,2),...
func edgeFromRank(rank int64, n int) (int, int) {
	u := 0
	remaining := rank
	for {
		rowLen := int64(n - 1 - u)
		if remaining < rowLen {
			return u, u + 1 + int(remaining)
		}
		remaining -= rowLen
		u++
	}
}
