// Package graph implements the static undirected graph substrate: adjacency
// lists, standard builders (grids, tori, k-augmented grids, classic
// families), breadth-first search, diameter, connectivity, and the degree
// statistics (δ-regularity) that Corollary 6 of the paper depends on.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..n-1 with sorted
// adjacency lists. Build one with NewBuilder or a builder function.
type Graph struct {
	n   int
	adj [][]int32
	m   int // number of edges
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// ForEachNeighbor calls fn for every neighbor of v in increasing order.
func (g *Graph) ForEachNeighbor(v int, fn func(u int)) {
	for _, u := range g.adj[v] {
		fn(int(u))
	}
}

// HasEdge reports whether {u, v} is an edge, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edges returns all edges as (u, v) pairs with u < v.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.m)
}

// Builder accumulates edges, deduplicates them, and produces a Graph.
type Builder struct {
	n     int
	edges map[int64]struct{}
}

// NewBuilder creates a builder for an n-vertex graph. It panics if n <= 0.
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic("graph: NewBuilder needs n > 0")
	}
	return &Builder{n: n, edges: make(map[int64]struct{})}
}

// key encodes an undirected pair with u < v.
func (b *Builder) key(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)*int64(b.n) + int64(v)
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicates are
// ignored; out-of-range vertices panic.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges[b.key(u, v)] = struct{}{}
}

// HasEdge reports whether the builder already contains {u, v}.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.edges[b.key(u, v)]
	return ok
}

// Build finalizes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, adj: make([][]int32, b.n), m: len(b.edges)}
	deg := make([]int, b.n)
	type pair struct{ u, v int }
	pairs := make([]pair, 0, len(b.edges))
	for k := range b.edges {
		u := int(k / int64(b.n))
		v := int(k % int64(b.n))
		pairs = append(pairs, pair{u, v})
		deg[u]++
		deg[v]++
	}
	for v := 0; v < b.n; v++ {
		g.adj[v] = make([]int32, 0, deg[v])
	}
	for _, p := range pairs {
		g.adj[p.u] = append(g.adj[p.u], int32(p.v))
		g.adj[p.v] = append(g.adj[p.v], int32(p.u))
	}
	for v := 0; v < b.n; v++ {
		sort.Slice(g.adj[v], func(i, j int) bool { return g.adj[v][i] < g.adj[v][j] })
	}
	return g
}
