package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2) // self loop ignored
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge lookup failed")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
}

func TestBuilderPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewBuilder(0) did not panic")
			}
		}()
		NewBuilder(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range AddEdge did not panic")
			}
		}()
		NewBuilder(2).AddEdge(0, 5)
	}()
}

func TestAdjacencySortedAndSymmetric(t *testing.T) {
	r := rng.New(5)
	g := Gnp(60, 0.1, r)
	for v := 0; v < g.N(); v++ {
		adj := g.Neighbors(v)
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("adjacency of %d not strictly sorted", v)
			}
		}
		for _, u := range adj {
			if !g.HasEdge(int(u), v) {
				t.Fatalf("asymmetric edge %d-%d", v, u)
			}
		}
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	// Corner has degree 2, center has degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(1*4+1) != 4 {
		t.Fatalf("interior degree = %d", g.Degree(5))
	}
	if !g.IsConnected() {
		t.Fatal("grid should be connected")
	}
}

func TestGridDiameter(t *testing.T) {
	g := Grid(4, 7)
	if d := g.Diameter(); d != 3+6 {
		t.Fatalf("diameter = %d, want 9", d)
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	s := g.Degrees()
	if s.Min != 4 || s.Max != 4 {
		t.Fatalf("torus degrees = %+v, want all 4", s)
	}
	if g.M() != 2*4*5 {
		t.Fatalf("torus M = %d, want 40", g.M())
	}
	if g.DegreeRegularity() != 1 {
		t.Fatal("torus should be 1-regular in the δ sense")
	}
}

func TestKAugmentedGridK1IsGrid(t *testing.T) {
	a := KAugmentedGrid(5, 5, 1)
	b := Grid(5, 5)
	if a.M() != b.M() || a.N() != b.N() {
		t.Fatalf("k=1 augmented grid differs from grid: %v vs %v", a, b)
	}
}

func TestKAugmentedGridEdges(t *testing.T) {
	g := KAugmentedGrid(5, 5, 2)
	// (2,2) connects to all cells at Manhattan distance 1 or 2: 4 + 8 = 12.
	center := 2*5 + 2
	if g.Degree(center) != 12 {
		t.Fatalf("center degree = %d, want 12", g.Degree(center))
	}
	// Corner (0,0): (0,1),(1,0),(0,2),(2,0),(1,1) = 5 neighbors.
	if g.Degree(0) != 5 {
		t.Fatalf("corner degree = %d, want 5", g.Degree(0))
	}
	// Diameter shrinks roughly by factor k.
	if d := g.Diameter(); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
}

func TestKAugmentedTorusRegular(t *testing.T) {
	g := KAugmentedTorus(6, 6, 2)
	s := g.Degrees()
	// Toroidal Manhattan ball of radius 2 minus the center: 4 + 8 = 12.
	if s.Min != 12 || s.Max != 12 {
		t.Fatalf("augmented torus degrees = %+v, want all 12", s)
	}
	if g.DegreeRegularity() != 1 {
		t.Fatal("torus must be 1-regular in the δ sense")
	}
	if !g.IsConnected() {
		t.Fatal("augmented torus must be connected")
	}
}

func TestKAugmentedTorusK1IsTorus(t *testing.T) {
	a := KAugmentedTorus(5, 4, 1)
	b := Torus(5, 4)
	if a.M() != b.M() || a.N() != b.N() {
		t.Fatalf("k=1 augmented torus differs from torus: %v vs %v", a, b)
	}
	for _, e := range b.Edges() {
		if !a.HasEdge(e[0], e[1]) {
			t.Fatalf("missing torus edge %v", e)
		}
	}
}

func TestKAugmentedTorusDiameterShrinks(t *testing.T) {
	d1 := KAugmentedTorus(8, 8, 1).Diameter()
	d2 := KAugmentedTorus(8, 8, 2).Diameter()
	if d2*2 != d1 && d2 >= d1 {
		t.Fatalf("augmentation should shrink diameter: %d -> %d", d1, d2)
	}
}

func TestKAugmentedTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	KAugmentedTorus(3, 3, 0)
}

func TestKAugmentedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	KAugmentedGrid(3, 3, 0)
}

func TestPathCycle(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || p.Diameter() != 4 {
		t.Fatalf("path wrong: m=%d d=%d", p.M(), p.Diameter())
	}
	c := Cycle(6)
	if c.M() != 6 || c.Diameter() != 3 {
		t.Fatalf("cycle wrong: m=%d d=%d", c.M(), c.Diameter())
	}
	tiny := Cycle(2)
	if tiny.M() != 1 {
		t.Fatalf("2-cycle should degenerate to an edge, m=%d", tiny.M())
	}
}

func TestCompleteStar(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 || k.Diameter() != 1 {
		t.Fatalf("complete wrong: %v", k)
	}
	s := Star(6)
	if s.M() != 5 || s.Degree(0) != 5 || s.Diameter() != 2 {
		t.Fatalf("star wrong: %v", s)
	}
	if s.DegreeRegularity() != 5 {
		t.Fatalf("star regularity = %v", s.DegreeRegularity())
	}
}

func TestGnpDensity(t *testing.T) {
	r := rng.New(7)
	g := Gnp(300, 0.05, r)
	d := g.EdgeDensity()
	if d < 0.04 || d > 0.06 {
		t.Fatalf("G(n,p) density = %v, want ~0.05", d)
	}
}

func TestGnpExtremes(t *testing.T) {
	r := rng.New(9)
	if g := Gnp(10, 0, r); g.M() != 0 {
		t.Fatal("G(n,0) should be empty")
	}
	if g := Gnp(10, 1, r); g.M() != 45 {
		t.Fatal("G(n,1) should be complete")
	}
}

func TestEdgeFromRankBijection(t *testing.T) {
	n := 10
	seen := map[[2]int]bool{}
	total := int64(n) * int64(n-1) / 2
	for r := int64(0); r < total; r++ {
		u, v := edgeFromRank(r, n)
		if u < 0 || v <= u || v >= n {
			t.Fatalf("rank %d -> invalid pair (%d,%d)", r, u, v)
		}
		p := [2]int{u, v}
		if seen[p] {
			t.Fatalf("rank %d -> duplicate pair (%d,%d)", r, u, v)
		}
		seen[p] = true
	}
	if int64(len(seen)) != total {
		t.Fatalf("ranks cover %d pairs, want %d", len(seen), total)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	d := g.BFS(0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatal("unreachable nodes should have distance -1")
	}
	if g.Eccentricity(0) != -1 {
		t.Fatal("eccentricity on disconnected graph should be -1")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter on disconnected graph should be -1")
	}
}

func TestBFSSymmetryProperty(t *testing.T) {
	r := rng.New(11)
	f := func(seed uint16) bool {
		g := Gnp(30, 0.15, rng.New(uint64(seed)))
		u := r.Intn(30)
		v := r.Intn(30)
		return g.BFS(u)[v] == g.BFS(v)[u]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathValid(t *testing.T) {
	g := Grid(5, 5)
	path := g.ShortestPath(0, 24)
	if len(path) != g.BFS(0)[24]+1 {
		t.Fatalf("path length %d, want %d", len(path)-1, g.BFS(0)[24])
	}
	if path[0] != 0 || path[len(path)-1] != 24 {
		t.Fatal("path endpoints wrong")
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("path step %d-%d not an edge", path[i-1], path[i])
		}
	}
}

func TestShortestPathTrivialAndMissing(t *testing.T) {
	g := Path(3)
	if p := g.ShortestPath(1, 1); len(p) != 1 || p[0] != 1 {
		t.Fatal("self path wrong")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	disc := b.Build()
	if disc.ShortestPath(0, 3) != nil {
		t.Fatal("path to unreachable vertex should be nil")
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	ids, count := g.Components()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if ids[0] != ids[1] || ids[2] != ids[3] || ids[0] == ids[2] {
		t.Fatalf("component ids wrong: %v", ids)
	}
}

func TestDegreeStatsAndDensity(t *testing.T) {
	g := Star(5)
	s := g.Degrees()
	if s.Min != 1 || s.Max != 4 || s.Mean != 8.0/5 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if g.AverageDegree() != 8.0/5 {
		t.Fatal("average degree wrong")
	}
	k := Complete(5)
	if k.EdgeDensity() != 1 {
		t.Fatal("complete density should be 1")
	}
}

func TestRegularityIsolatedVertex(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.DegreeRegularity() <= float64(g.Degrees().Max) {
		t.Fatal("isolated vertex should blow up regularity")
	}
}

func TestEdgesListing(t *testing.T) {
	g := Path(4)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("edges = %v", es)
	}
	for _, e := range es {
		if e[0] >= e[1] {
			t.Fatalf("edge not normalized: %v", e)
		}
	}
}

func BenchmarkBFSGrid(b *testing.B) {
	g := Grid(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.N())
	}
}

func BenchmarkGnpBuild(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		Gnp(1000, 0.01, r)
	}
}
