// P2P churn: file dissemination in a peer-to-peer overlay whose links churn
// — the link-based dynamic network setting of Appendix A. Every potential
// link follows an independent birth/death chain (sessions come and go); the
// seeder pushes a file announcement that spreads peer-to-peer. The example
// compares full flooding against the bandwidth-capped randomized push
// protocol of Section 5 (each informed peer contacts at most k current
// neighbors per round) and shows the graceful latency/bandwidth trade-off.
//
//	go run ./examples/p2pchurn
package main

import (
	"fmt"

	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	const (
		n      = 600
		trials = 9
	)
	// Average session degree 6; link lifetimes ~ 25 rounds.
	alpha := 6.0 / float64(n)
	churn := 0.04
	params := edgemeg.Params{N: n, P: alpha * churn, Q: churn * (1 - alpha)}

	fmt.Printf("P2P overlay: %d peers, mean degree %.1f, link half-life ≈ %.0f rounds\n",
		n, params.ExpectedDegree(), 1/params.Q)
	fmt.Println()

	spec := model.New("edgemeg").
		WithInt("n", n).WithFloat("p", params.P).WithFloat("q", params.Q)
	base := func(trial int) dyngraph.Dynamic {
		return model.MustBuild(spec, rng.Seed(7, uint64(trial)))
	}

	// Full flooding reference.
	fullTimes := runMany(func(trial int) (dyngraph.Dynamic, int) {
		return base(trial), 0
	}, trials)
	fullMed := stats.Median(fullTimes)
	fmt.Printf("%-22s median %3.0f rounds, est. messages/peer/round: unbounded\n",
		"flooding (reference)", fullMed)

	// Bandwidth-capped push.
	for _, k := range []int{1, 2, 4} {
		k := k
		times := runMany(func(trial int) (dyngraph.Dynamic, int) {
			inner := base(trial)
			return dyngraph.NewSubsample(inner, k, rng.New(rng.Seed(8, uint64(k), uint64(trial)))), 0
		}, trials)
		med := stats.Median(times)
		fmt.Printf("%-22s median %3.0f rounds (%.2fx flooding), messages/peer/round ≤ %d\n",
			fmt.Sprintf("push k=%d", k), med, med/fullMed, k)
	}

	fmt.Println()
	fmt.Println("reading: the randomized protocol is flooding on a virtual subsampled MEG")
	fmt.Println("(Section 5); capping fan-out to a few messages/round costs only a small")
	fmt.Println("constant factor in latency, shrinking toward 1x as the cap grows.")
}

func runMany(factory flood.Factory, trials int) []float64 {
	results := flood.Trials(factory, trials, flood.TrialsOpts{
		Opts: flood.Opts{MaxSteps: 1 << 17},
	})
	times, incomplete := flood.TimesOf(results)
	if incomplete > 0 {
		fmt.Printf("  (%d incomplete runs dropped)\n", incomplete)
	}
	return times
}
