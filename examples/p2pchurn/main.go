// P2P churn: file dissemination in a peer-to-peer overlay whose links churn
// — the link-based dynamic network setting of Appendix A. Every potential
// link follows an independent birth/death chain (sessions come and go); the
// seeder pushes a file announcement that spreads peer-to-peer. The example
// compares full flooding against the bandwidth-capped randomized push
// protocol of Section 5 (each informed peer contacts at most k current
// neighbors per round) and shows the graceful latency/bandwidth trade-off.
//
// The comparison runs as one declarative study.Sweep — the same engine
// cmd/sweep drives from JSON files, here built in code — and prints the
// aggregated report table the sweep's report layer produces.
//
//	go run ./examples/p2pchurn
package main

import (
	"fmt"
	"os"

	"repro/internal/edgemeg"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/spec"
	"repro/internal/study"
)

func main() {
	const (
		n      = 600
		trials = 9
	)
	// Average session degree 6; link lifetimes ~ 25 rounds.
	alpha := 6.0 / float64(n)
	churn := 0.04
	params := edgemeg.Params{N: n, P: alpha * churn, Q: churn * (1 - alpha)}

	fmt.Printf("P2P overlay: %d peers, mean degree %.1f, link half-life ≈ %.0f rounds\n",
		n, params.ExpectedDegree(), 1/params.Q)
	fmt.Println()

	// The whole comparison is one declarative sweep: one overlay model
	// crossed with the flooding baseline and the capped push variants.
	pushKs := []int{1, 2, 4}
	protocols := []spec.Spec{protocol.New("flood")}
	for _, k := range pushKs {
		protocols = append(protocols, protocol.New("push").WithInt("k", k))
	}
	sw := study.Sweep{
		Models: []spec.Spec{
			model.New("edgemeg").WithInt("n", n).WithFloat("p", params.P).WithFloat("q", params.Q),
		},
		Protocols: protocols,
		Trials:    trials,
		Seed:      7,
		MaxSteps:  1 << 17,
	}
	records, err := study.RunSweep(sw, nil, nil)
	if err != nil {
		panic(err)
	}
	rows := study.Report(records)
	if err := study.WriteMarkdown(os.Stdout, rows); err != nil {
		panic(err)
	}

	// Grid order: flooding first, then push in ascending k.
	fullMed := records[0].MedianTime()
	fmt.Println()
	for i, rec := range records[1:] {
		med := rec.MedianTime()
		fmt.Printf("push k=%d: %.2fx flooding latency at ≤ %d messages/peer/round\n",
			pushKs[i], med/fullMed, pushKs[i])
	}

	fmt.Println()
	fmt.Println("reading: the randomized protocol is flooding on a virtual subsampled MEG")
	fmt.Println("(Section 5); capping fan-out to a few messages/round costs only a small")
	fmt.Println("constant factor in latency, shrinking toward 1x as the cap grows.")
}
