// MANET: an opportunistic delay-tolerant mobile ad-hoc network, the
// scenario the paper's introduction motivates ("this is surely the model
// setting that best fits opportunistic delay-tolerant Mobile Ad-hoc
// Networks"). 150 vehicles move through a 30×30 km area under the random
// waypoint model with short-range radios; every snapshot of the contact
// graph is disconnected, so a broadcast must be physically carried by the
// vehicles. The example measures broadcast latency across radio ranges and
// compares it with the transport lower bound and the Section 4.1 upper
// bound.
//
//	go run ./examples/manet
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/study"
)

func main() {
	const (
		n      = 150
		side   = 30.0 // km
		speed  = 0.5  // km per time step
		trials = 9
	)
	fmt.Println("opportunistic MANET broadcast: 150 vehicles on a 30×30 km area, v = 0.5 km/step")
	fmt.Println()
	fmt.Printf("%-10s %-14s %-16s %-16s %-12s\n",
		"radio km", "median steps", "transport lower", "RWP upper bound", "snapshots")

	for _, radio := range []float64{0.8, 1.2, 2.0, 3.0} {
		spec := model.New("waypoint").
			WithInt("n", n).WithFloat("L", side).WithFloat("r", radio).WithFloat("vmin", speed)
		// One study cell per radio range: the engine derives per-trial
		// seeds, runs the pool, and summarizes completion times.
		cell := study.MustRun(study.Study{
			Model:    spec,
			Protocol: protocol.New("flood"),
			Trials:   trials,
			Seed:     rng.Seed(2026, uint64(radio*1000)),
			MaxSteps: 1 << 18,
		})

		// How connected is a typical snapshot?
		probe := model.MustBuild(spec, rng.Seed(2026, uint64(radio*1000), 999))
		snap := dyngraph.Snapshot(probe)
		_, comps := snap.Components()

		fmt.Printf("%-10.1f %-14.0f %-16.1f %-16.0f %d components (inc %d)\n",
			radio, cell.Times.Median,
			core.TransportLowerBound(side, radio, speed),
			core.RWPBound(side, speed, radio, n),
			comps, cell.Incomplete)
	}

	fmt.Println()
	fmt.Println("reading: even with ~100 disconnected components per snapshot the broadcast")
	fmt.Println("completes within a small multiple of the physical transport time L/(r+v) —")
	fmt.Println("the mixing-time-driven behaviour Theorem 1 predicts for sparse MANETs.")
}
