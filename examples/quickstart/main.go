// Quickstart: flood a message through a sparse Markovian evolving graph and
// compare the measured time against the paper's bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/edgemeg"
	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
)

func main() {
	// A 1000-node dynamic network in the paper's interesting regime: every
	// snapshot is sparse and disconnected (expected degree 2), edges churn
	// with a 20-step time constant.
	const n = 1000
	alpha := 2.0 / float64(n) // stationary edge probability
	speed := 0.05             // p + q: chain speed, Tmix ≈ 1/speed
	params := edgemeg.Params{N: n, P: alpha * speed, Q: speed * (1 - alpha)}

	fmt.Printf("edge-MEG: n=%d, stationary expected degree=%.1f, per-edge mixing ≈ %d steps\n",
		n, params.ExpectedDegree(), params.MixingTime(0.25))

	// Build the dynamic graph in its stationary regime and flood from 0.
	spec := model.New("edgemeg").
		WithInt("n", n).WithFloat("p", params.P).WithFloat("q", params.Q)
	g := model.MustBuild(spec, 42)
	fmt.Printf("snapshot at t=0: %d edges (a connected graph would need ≥ %d)\n",
		dyngraph.EdgeCount(g), n-1)

	// Protocols, like models, are selected by spec; "flood" is the paper's
	// §2 flooding process.
	res := protocol.MustBuild(protocol.New("flood"), 0).
		Run(g, 0, flood.Opts{MaxSteps: 100000, KeepTimeline: true})
	if !res.Completed {
		fmt.Println("flooding did not complete — raise MaxSteps")
		return
	}
	fmt.Printf("flooding time: %d steps (half the network informed by t=%d)\n",
		res.Time, res.HalfTime)
	fmt.Printf("informed-set doublings at t = %v\n", flood.Doublings(res.Timeline))

	// The paper's bounds for this instance.
	fmt.Printf("Theorem 1 bound:      %.0f steps\n",
		core.EdgeMEGBound(params.P, params.Q, n))
	fmt.Printf("prior bound of [10]:  %.0f steps\n",
		core.PriorEdgeMEGBound(n, params.P))
}
