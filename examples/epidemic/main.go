// Epidemic: SIR disease spreading in a mobile population — the paper's
// opening motivation ("a question that can model the spread of disease").
// People move through a city under the random waypoint model; an infected
// person transmits to anyone within contact range, and recovers (stops
// transmitting, stays immune) after a fixed infectious period. That process
// is exactly parsimonious flooding [4] on the mobility MEG: the infectious
// period is the activity window. The example sweeps the infectious period
// and reports the attack rate (final fraction ever infected) and epidemic
// duration, exhibiting the sharp window threshold that E14 measures on
// edge-MEGs.
//
//	go run ./examples/epidemic
package main

import (
	"fmt"

	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	const (
		people  = 250
		side    = 40.0 // city size
		contact = 1.0  // contact radius
		speed   = 1.0
		trials  = 9
	)
	fmt.Printf("SIR epidemic: %d people on a %.0f×%.0f area, contact radius %.1f, waypoint mobility\n",
		people, side, side, contact)
	fmt.Println("(infection = parsimonious flooding: transmit only while infectious)")
	fmt.Println()
	fmt.Printf("%-18s %-14s %-16s %-12s\n", "infectious steps", "attack rate", "median duration", "extinct runs")

	spec := model.New("waypoint").
		WithInt("n", people).WithFloat("L", side).WithFloat("r", contact).WithFloat("vmin", speed)
	for _, infectious := range []int{2, 5, 10, 20, 40} {
		// SIR transmission is the parsimonious protocol with the infectious
		// period as the activity window — one spec parameter.
		sir := protocol.New("parsimonious").WithInt("active", infectious)
		var attacked []float64
		var durations []float64
		extinct := 0
		for trial := 0; trial < trials; trial++ {
			city := model.MustBuild(spec, rng.Seed(3, uint64(infectious), uint64(trial)))
			res := protocol.MustBuild(sir, 0).Run(city, 0,
				flood.Opts{MaxSteps: 1 << 16, KeepTimeline: true})
			attacked = append(attacked, float64(res.Informed)/people)
			if res.Completed {
				durations = append(durations, float64(res.Time))
			} else {
				extinct++
				durations = append(durations, float64(len(res.Timeline)-1))
			}
		}
		fmt.Printf("%-18d %-14.2f %-16.0f %d/%d\n",
			infectious, stats.Mean(attacked), stats.Median(durations), extinct, trials)
	}

	fmt.Println()
	fmt.Println("reading: short infectious periods die out before carriers cross the sparse")
	fmt.Println("contact graph; once the period reaches the mobility mixing scale (~L/v)")
	fmt.Println("the epidemic reaches everyone — the activity-window threshold of E14.")
}
