// Grid robots: a warehouse fleet spreading a firmware update by proximity
// radio — the graph mobility setting of Section 4.1. Robots move over an
// aisle grid; an update starts on one robot and transfers whenever two
// robots come within one aisle-cell of each other. The example contrasts
// the two trip disciplines the paper analyzes: single-cell random-walk
// wandering (mixing time Θ(m²)) versus shortest-path tasking, i.e. the
// random-path model with L-shaped routes (mixing time Θ(m)) — task-driven
// fleets propagate updates far faster, as Corollary 5 predicts.
//
//	go run ./examples/gridrobots
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
	"repro/internal/randompath"
	"repro/internal/rng"
	"repro/internal/study"
)

func main() {
	const (
		aisles = 12 // warehouse is aisles × aisles cells
		robots = 25
		trials = 9
	)
	grid := graph.Grid(aisles, aisles)
	fmt.Printf("warehouse: %d×%d cells (diameter %d), %d robots, radio reach 1 cell\n",
		aisles, aisles, grid.Diameter(), robots)
	fmt.Println()

	families := []struct {
		name   string
		family string
	}{
		{"random wandering (walk)", "edges"},
		{"task routes (L-paths)", "l"},
	}
	for fi, fam := range families {
		cell := study.MustRun(study.Study{
			Model: model.New("paths").
				WithInt("n", robots).WithInt("m", aisles).With("family", fam.family).WithInt("hop", 1),
			Protocol: protocol.New("flood"),
			Trials:   trials,
			Seed:     rng.Seed(11, uint64(fi)),
			MaxSteps: 1 << 18,
		})

		// δ-regularity is a property of the path family, computed on the
		// family directly rather than on a built simulation.
		paths, err := randompath.FamilyPaths(fam.family, aisles, grid)
		if err != nil {
			panic(err)
		}
		rp, err := randompath.New(grid, paths)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-26s median update time %4.0f steps  (δ-regularity %.2f, incomplete %d)\n",
			fam.name, cell.Times.Median, rp.DeltaRegularity(), cell.Incomplete)
	}

	fmt.Println()
	fmt.Println("reading: long task routes decorrelate robot positions in O(diameter) steps,")
	fmt.Println("so the update crosses the warehouse roughly diameter/m² faster than under")
	fmt.Println("aimless single-cell wandering — the random-path vs random-walk gap of §4.1.")
}
