package repro_test

// One benchmark per experiment of EXPERIMENTS.md. Each benchmark executes
// the experiment's quick configuration end to end (model construction,
// trials, table rendering to io.Discard), so `go test -bench=.` regenerates
// every result series and reports the wall-clock cost of doing so. Run
// `go run ./cmd/benchtab` for the human-readable full-scale tables.

import (
	"io"
	"testing"

	"repro/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := bench.Config{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		if err := bench.RunOne(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpE1(b *testing.B)  { runExperiment(b, "E1") }  // Theorem 1: flooding vs n on a stationary MEG
func BenchmarkExpE2(b *testing.B)  { runExperiment(b, "E2") }  // edge-MEG p sweep vs the bound of [10]
func BenchmarkExpE3(b *testing.B)  { runExperiment(b, "E3") }  // edge-MEG flooding vs n at fixed (p, q)
func BenchmarkExpE4(b *testing.B)  { runExperiment(b, "E4") }  // random waypoint sparse-regime scaling
func BenchmarkExpE5(b *testing.B)  { runExperiment(b, "E5") }  // waypoint positional density (Corollary 4)
func BenchmarkExpE6(b *testing.B)  { runExperiment(b, "E6") }  // mixing-time curves of the paper's chains
func BenchmarkExpE7(b *testing.B)  { runExperiment(b, "E7") }  // spreading vs saturation phases
func BenchmarkExpE8(b *testing.B)  { runExperiment(b, "E8") }  // density and β-independence conditions
func BenchmarkExpE9(b *testing.B)  { runExperiment(b, "E9") }  // random paths: flooding vs diameter
func BenchmarkExpE10(b *testing.B) { runExperiment(b, "E10") } // δ-regularity ablation
func BenchmarkExpE11(b *testing.B) { runExperiment(b, "E11") } // k-augmented tori vs meeting-time bound
func BenchmarkExpE12(b *testing.B) { runExperiment(b, "E12") } // randomized push gossip (Section 5)
func BenchmarkExpE13(b *testing.B) { runExperiment(b, "E13") } // Theorem 3 η-dependence
func BenchmarkExpE14(b *testing.B) { runExperiment(b, "E14") } // parsimonious flooding [4]
func BenchmarkExpE15(b *testing.B) { runExperiment(b, "E15") } // random walk on a MEG: cover time [2]
func BenchmarkExpE16(b *testing.B) { runExperiment(b, "E16") } // bursty four-state edge-MEG [5]
func BenchmarkExpE17(b *testing.B) { runExperiment(b, "E17") } // load balancing over MEGs [16, 28]
func BenchmarkExpE18(b *testing.B) { runExperiment(b, "E18") } // flooding vs k-push vs pull (§5)
