package repro_test

// Two benchmark families:
//
//   - BenchmarkExpE*: one benchmark per experiment of EXPERIMENTS.md. Each
//     executes the experiment's quick configuration end to end (model
//     construction, trials, table rendering to io.Discard), so
//     `go test -bench=Exp` regenerates every result series and reports the
//     wall-clock cost of doing so. Run `go run ./cmd/benchtab` for the
//     human-readable full-scale tables.
//
//   - BenchmarkFlood*: the batch-vs-callback hot-loop comparison. The
//     flooding engine consumes snapshots through dyngraph.Batcher when a
//     model implements it; these benchmarks run the same flood over the
//     same model with the batch view enabled and disabled
//     (`go test -bench=Flood`), and TestFloodBatchMatchesCallback pins
//     down that both paths return identical Results on fixed seeds.

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/dyngraph"
	"repro/internal/flood"
	"repro/internal/model"
	_ "repro/internal/model/all"
	"repro/internal/protocol"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := bench.Config{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		if err := bench.RunOne(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpE1(b *testing.B)  { runExperiment(b, "E1") }  // Theorem 1: flooding vs n on a stationary MEG
func BenchmarkExpE2(b *testing.B)  { runExperiment(b, "E2") }  // edge-MEG p sweep vs the bound of [10]
func BenchmarkExpE3(b *testing.B)  { runExperiment(b, "E3") }  // edge-MEG flooding vs n at fixed (p, q)
func BenchmarkExpE4(b *testing.B)  { runExperiment(b, "E4") }  // random waypoint sparse-regime scaling
func BenchmarkExpE5(b *testing.B)  { runExperiment(b, "E5") }  // waypoint positional density (Corollary 4)
func BenchmarkExpE6(b *testing.B)  { runExperiment(b, "E6") }  // mixing-time curves of the paper's chains
func BenchmarkExpE7(b *testing.B)  { runExperiment(b, "E7") }  // spreading vs saturation phases
func BenchmarkExpE8(b *testing.B)  { runExperiment(b, "E8") }  // density and β-independence conditions
func BenchmarkExpE9(b *testing.B)  { runExperiment(b, "E9") }  // random paths: flooding vs diameter
func BenchmarkExpE10(b *testing.B) { runExperiment(b, "E10") } // δ-regularity ablation
func BenchmarkExpE11(b *testing.B) { runExperiment(b, "E11") } // k-augmented tori vs meeting-time bound
func BenchmarkExpE12(b *testing.B) { runExperiment(b, "E12") } // randomized push gossip (Section 5)
func BenchmarkExpE13(b *testing.B) { runExperiment(b, "E13") } // Theorem 3 η-dependence
func BenchmarkExpE14(b *testing.B) { runExperiment(b, "E14") } // parsimonious flooding [4]
func BenchmarkExpE15(b *testing.B) { runExperiment(b, "E15") } // random walk on a MEG: cover time [2]
func BenchmarkExpE16(b *testing.B) { runExperiment(b, "E16") } // bursty four-state edge-MEG [5]
func BenchmarkExpE17(b *testing.B) { runExperiment(b, "E17") } // load balancing over MEGs [16, 28]
func BenchmarkExpE18(b *testing.B) { runExperiment(b, "E18") } // flooding vs k-push vs pull (§5)

// callbackOnly hides a model's Batcher/NeighborLister implementations,
// forcing the flooding engine onto the ForEachNeighbor callback path.
type callbackOnly struct{ d dyngraph.Dynamic }

func (c callbackOnly) N() int                                { return c.d.N() }
func (c callbackOnly) Step()                                 { c.d.Step() }
func (c callbackOnly) ForEachNeighbor(i int, fn func(j int)) { c.d.ForEachNeighbor(i, fn) }

// floodBenchSpecs are the hot-loop comparison workloads: a sparse
// stationary edge-MEG (the paper's core regime) and a geometric waypoint
// model, both sized so a flood takes many snapshot scans.
var floodBenchSpecs = map[string]model.Spec{
	"EdgeMEG": model.New("edgemeg").WithInt("n", 2048).
		WithFloat("p", 0.0001).WithFloat("q", 0.0999), // expected degree ≈ 2, Tmix ≈ 10
	"Waypoint": model.New("waypoint").WithInt("n", 512).
		WithFloat("L", 45).WithFloat("r", 1).WithFloat("vmin", 1),
}

func benchFlood(b *testing.B, spec model.Spec, batch bool) {
	b.Helper()
	b.ReportAllocs()
	// One warm scratch across iterations, as a study worker would hold:
	// remaining allocs/op is model construction, not the engine.
	opts := flood.Opts{MaxSteps: 1 << 17, Scratch: flood.NewScratch()}
	for i := 0; i < b.N; i++ {
		d := model.MustBuild(spec, 1)
		if !batch {
			d = callbackOnly{d}
		}
		res := flood.Run(d, 0, opts)
		if !res.Completed {
			b.Fatal("flood did not complete")
		}
	}
}

func BenchmarkFloodEdgeMEGBatch(b *testing.B)    { benchFlood(b, floodBenchSpecs["EdgeMEG"], true) }
func BenchmarkFloodEdgeMEGCallback(b *testing.B) { benchFlood(b, floodBenchSpecs["EdgeMEG"], false) }
func BenchmarkFloodWaypointBatch(b *testing.B)   { benchFlood(b, floodBenchSpecs["Waypoint"], true) }
func BenchmarkFloodWaypointCallback(b *testing.B) {
	benchFlood(b, floodBenchSpecs["Waypoint"], false)
}

// BenchmarkPull / BenchmarkParsimonious / BenchmarkPushPull: the
// protocol-engine hot loops (per-node neighbor batches via
// dyngraph.NeighborLister) over a moderately dense stationary edge-MEG,
// exercised through spec-built protocols so the registry path is what is
// measured, exactly as production callers run it.
var protoBenchModel = model.New("edgemeg").WithInt("n", 512).
	WithFloat("p", 0.004).WithFloat("q", 0.096) // stationary degree ≈ 20

func benchProtocol(b *testing.B, ptext string) {
	b.Helper()
	b.ReportAllocs()
	pspec, err := protocol.Parse(ptext)
	if err != nil {
		b.Fatal(err)
	}
	opts := flood.Opts{MaxSteps: 1 << 17, Scratch: flood.NewScratch()}
	for i := 0; i < b.N; i++ {
		d := model.MustBuild(protoBenchModel, 1)
		p := protocol.MustBuild(pspec, 2)
		if res := p.Run(d, 0, opts); !res.Completed {
			b.Fatalf("%s did not complete", ptext)
		}
	}
}

func BenchmarkPull(b *testing.B)         { benchProtocol(b, "pull") }
func BenchmarkParsimonious(b *testing.B) { benchProtocol(b, "parsimonious:active=32") }
func BenchmarkPushPull(b *testing.B)     { benchProtocol(b, "pushpull:k=1") }

// TestFloodBatchMatchesCallback verifies the acceptance criterion of the
// hot-loop redesign: flooding over the batch view and over the callback
// view of the same model (same spec, same seed) returns identical Results,
// timeline included.
func TestFloodBatchMatchesCallback(t *testing.T) {
	specs := []model.Spec{
		model.New("edgemeg").WithInt("n", 256).WithFloat("p", 0.002).WithFloat("q", 0.098),
		model.New("edgemeg").WithInt("n", 96).WithFloat("p", 0.01).WithFloat("q", 0.09).WithBool("dense", true),
		model.New("edgemeg4").WithInt("n", 96),
		model.New("waypoint").WithInt("n", 128).WithFloat("L", 18).WithFloat("r", 1.5),
		model.New("direction").WithInt("n", 128).WithFloat("L", 18).WithFloat("r", 1.5),
		model.New("walk").WithInt("n", 48).WithInt("m", 8),
		model.New("paths").WithInt("n", 24).WithInt("m", 6),
		model.New("static").With("topology", "torus").WithInt("m", 8),
	}
	opts := flood.Opts{MaxSteps: 1 << 16, KeepTimeline: true}
	for _, spec := range specs {
		for _, seed := range []uint64{1, 42} {
			got := flood.Run(model.MustBuild(spec, seed), 0, opts)
			want := flood.Run(callbackOnly{model.MustBuild(spec, seed)}, 0, opts)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v seed %d: batch result %+v != callback result %+v", spec, seed, got, want)
			}
		}
	}
}
